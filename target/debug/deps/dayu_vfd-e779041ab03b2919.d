/root/repo/target/debug/deps/dayu_vfd-e779041ab03b2919.d: crates/vfd/src/lib.rs crates/vfd/src/batch.rs crates/vfd/src/counting.rs crates/vfd/src/crash.rs crates/vfd/src/faulty.rs crates/vfd/src/file.rs crates/vfd/src/mem.rs crates/vfd/src/replay.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_vfd-e779041ab03b2919.rmeta: crates/vfd/src/lib.rs crates/vfd/src/batch.rs crates/vfd/src/counting.rs crates/vfd/src/crash.rs crates/vfd/src/faulty.rs crates/vfd/src/file.rs crates/vfd/src/mem.rs crates/vfd/src/replay.rs Cargo.toml

crates/vfd/src/lib.rs:
crates/vfd/src/batch.rs:
crates/vfd/src/counting.rs:
crates/vfd/src/crash.rs:
crates/vfd/src/faulty.rs:
crates/vfd/src/file.rs:
crates/vfd/src/mem.rs:
crates/vfd/src/replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
