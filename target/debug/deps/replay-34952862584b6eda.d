/root/repo/target/debug/deps/replay-34952862584b6eda.d: crates/bench/src/bin/replay.rs Cargo.toml

/root/repo/target/debug/deps/libreplay-34952862584b6eda.rmeta: crates/bench/src/bin/replay.rs Cargo.toml

crates/bench/src/bin/replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
