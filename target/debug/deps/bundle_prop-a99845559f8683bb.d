/root/repo/target/debug/deps/bundle_prop-a99845559f8683bb.d: crates/workflow/tests/bundle_prop.rs Cargo.toml

/root/repo/target/debug/deps/libbundle_prop-a99845559f8683bb.rmeta: crates/workflow/tests/bundle_prop.rs Cargo.toml

crates/workflow/tests/bundle_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
