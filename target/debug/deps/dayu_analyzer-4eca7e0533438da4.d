/root/repo/target/debug/deps/dayu_analyzer-4eca7e0533438da4.d: crates/analyzer/src/lib.rs crates/analyzer/src/build.rs crates/analyzer/src/detect.rs crates/analyzer/src/diff.rs crates/analyzer/src/export.rs crates/analyzer/src/graph.rs crates/analyzer/src/resolution.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_analyzer-4eca7e0533438da4.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/build.rs crates/analyzer/src/detect.rs crates/analyzer/src/diff.rs crates/analyzer/src/export.rs crates/analyzer/src/graph.rs crates/analyzer/src/resolution.rs Cargo.toml

crates/analyzer/src/lib.rs:
crates/analyzer/src/build.rs:
crates/analyzer/src/detect.rs:
crates/analyzer/src/diff.rs:
crates/analyzer/src/export.rs:
crates/analyzer/src/graph.rs:
crates/analyzer/src/resolution.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
