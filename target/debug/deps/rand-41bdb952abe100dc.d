/root/repo/target/debug/deps/rand-41bdb952abe100dc.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-41bdb952abe100dc.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
