/root/repo/target/debug/deps/crash_recovery-7684ad100cebaaf4.d: tests/crash_recovery.rs Cargo.toml

/root/repo/target/debug/deps/libcrash_recovery-7684ad100cebaaf4.rmeta: tests/crash_recovery.rs Cargo.toml

tests/crash_recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
