/root/repo/target/debug/deps/dayu_lint-caff3f28bc316c97.d: crates/lint/src/lib.rs crates/lint/src/contract.rs crates/lint/src/extent.rs crates/lint/src/fsck.rs crates/lint/src/hazard.rs crates/lint/src/hb.rs crates/lint/src/lifetime.rs crates/lint/src/model.rs crates/lint/src/repair.rs crates/lint/src/symbolic.rs crates/lint/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_lint-caff3f28bc316c97.rmeta: crates/lint/src/lib.rs crates/lint/src/contract.rs crates/lint/src/extent.rs crates/lint/src/fsck.rs crates/lint/src/hazard.rs crates/lint/src/hb.rs crates/lint/src/lifetime.rs crates/lint/src/model.rs crates/lint/src/repair.rs crates/lint/src/symbolic.rs crates/lint/src/verify.rs Cargo.toml

crates/lint/src/lib.rs:
crates/lint/src/contract.rs:
crates/lint/src/extent.rs:
crates/lint/src/fsck.rs:
crates/lint/src/hazard.rs:
crates/lint/src/hb.rs:
crates/lint/src/lifetime.rs:
crates/lint/src/model.rs:
crates/lint/src/repair.rs:
crates/lint/src/symbolic.rs:
crates/lint/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
