/root/repo/target/debug/deps/replay_matrix-67901ff41d756844.d: tests/replay_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libreplay_matrix-67901ff41d756844.rmeta: tests/replay_matrix.rs Cargo.toml

tests/replay_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
