/root/repo/target/debug/deps/dayu_h5ls-cacd75c1a65a9671.d: crates/core/src/bin/dayu-h5ls.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_h5ls-cacd75c1a65a9671.rmeta: crates/core/src/bin/dayu-h5ls.rs Cargo.toml

crates/core/src/bin/dayu-h5ls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
