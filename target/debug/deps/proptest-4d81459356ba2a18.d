/root/repo/target/debug/deps/proptest-4d81459356ba2a18.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-4d81459356ba2a18.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-4d81459356ba2a18.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
