/root/repo/target/debug/deps/dayu-d29eec0f86af005c.d: src/lib.rs

/root/repo/target/debug/deps/libdayu-d29eec0f86af005c.rlib: src/lib.rs

/root/repo/target/debug/deps/libdayu-d29eec0f86af005c.rmeta: src/lib.rs

src/lib.rs:
