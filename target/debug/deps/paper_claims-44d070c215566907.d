/root/repo/target/debug/deps/paper_claims-44d070c215566907.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-44d070c215566907: tests/paper_claims.rs

tests/paper_claims.rs:
