/root/repo/target/debug/deps/cli_tools-8364aa181a461098.d: tests/cli_tools.rs Cargo.toml

/root/repo/target/debug/deps/libcli_tools-8364aa181a461098.rmeta: tests/cli_tools.rs Cargo.toml

tests/cli_tools.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
