/root/repo/target/debug/deps/rayon-1181886daf209cda.d: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-1181886daf209cda.rlib: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-1181886daf209cda.rmeta: /tmp/stubs/rayon/src/lib.rs

/tmp/stubs/rayon/src/lib.rs:
