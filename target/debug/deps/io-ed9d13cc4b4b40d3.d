/root/repo/target/debug/deps/io-ed9d13cc4b4b40d3.d: crates/bench/src/bin/io.rs Cargo.toml

/root/repo/target/debug/deps/libio-ed9d13cc4b4b40d3.rmeta: crates/bench/src/bin/io.rs Cargo.toml

crates/bench/src/bin/io.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
