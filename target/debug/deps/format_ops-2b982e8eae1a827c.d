/root/repo/target/debug/deps/format_ops-2b982e8eae1a827c.d: crates/bench/benches/format_ops.rs Cargo.toml

/root/repo/target/debug/deps/libformat_ops-2b982e8eae1a827c.rmeta: crates/bench/benches/format_ops.rs Cargo.toml

crates/bench/benches/format_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
