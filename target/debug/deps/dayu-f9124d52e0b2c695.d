/root/repo/target/debug/deps/dayu-f9124d52e0b2c695.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdayu-f9124d52e0b2c695.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
