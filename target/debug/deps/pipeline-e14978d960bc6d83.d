/root/repo/target/debug/deps/pipeline-e14978d960bc6d83.d: crates/bench/src/bin/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-e14978d960bc6d83.rmeta: crates/bench/src/bin/pipeline.rs Cargo.toml

crates/bench/src/bin/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
