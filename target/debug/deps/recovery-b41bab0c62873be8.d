/root/repo/target/debug/deps/recovery-b41bab0c62873be8.d: crates/bench/src/bin/recovery.rs Cargo.toml

/root/repo/target/debug/deps/librecovery-b41bab0c62873be8.rmeta: crates/bench/src/bin/recovery.rs Cargo.toml

crates/bench/src/bin/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
