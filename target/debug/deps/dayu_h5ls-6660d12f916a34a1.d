/root/repo/target/debug/deps/dayu_h5ls-6660d12f916a34a1.d: crates/core/src/bin/dayu-h5ls.rs

/root/repo/target/debug/deps/dayu_h5ls-6660d12f916a34a1: crates/core/src/bin/dayu-h5ls.rs

crates/core/src/bin/dayu-h5ls.rs:
