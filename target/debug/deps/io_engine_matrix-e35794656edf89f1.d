/root/repo/target/debug/deps/io_engine_matrix-e35794656edf89f1.d: tests/io_engine_matrix.rs

/root/repo/target/debug/deps/io_engine_matrix-e35794656edf89f1: tests/io_engine_matrix.rs

tests/io_engine_matrix.rs:
