/root/repo/target/debug/deps/io_engine_matrix-0a91dd478bbe3f80.d: tests/io_engine_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libio_engine_matrix-0a91dd478bbe3f80.rmeta: tests/io_engine_matrix.rs Cargo.toml

tests/io_engine_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
