/root/repo/target/debug/deps/failure_injection-aaa3e4516390e137.d: tests/failure_injection.rs

/root/repo/target/debug/deps/failure_injection-aaa3e4516390e137: tests/failure_injection.rs

tests/failure_injection.rs:
