/root/repo/target/debug/deps/dayu_h5ls-5f437a68860755d1.d: crates/core/src/bin/dayu-h5ls.rs

/root/repo/target/debug/deps/dayu_h5ls-5f437a68860755d1: crates/core/src/bin/dayu-h5ls.rs

crates/core/src/bin/dayu-h5ls.rs:
