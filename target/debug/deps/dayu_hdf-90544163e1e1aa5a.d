/root/repo/target/debug/deps/dayu_hdf-90544163e1e1aa5a.d: crates/hdf/src/lib.rs crates/hdf/src/alloc.rs crates/hdf/src/chunk.rs crates/hdf/src/codec.rs crates/hdf/src/crc.rs crates/hdf/src/dataset.rs crates/hdf/src/error.rs crates/hdf/src/file.rs crates/hdf/src/group.rs crates/hdf/src/heap.rs crates/hdf/src/hooks.rs crates/hdf/src/journal.rs crates/hdf/src/meta.rs crates/hdf/src/raw.rs crates/hdf/src/space.rs

/root/repo/target/debug/deps/libdayu_hdf-90544163e1e1aa5a.rlib: crates/hdf/src/lib.rs crates/hdf/src/alloc.rs crates/hdf/src/chunk.rs crates/hdf/src/codec.rs crates/hdf/src/crc.rs crates/hdf/src/dataset.rs crates/hdf/src/error.rs crates/hdf/src/file.rs crates/hdf/src/group.rs crates/hdf/src/heap.rs crates/hdf/src/hooks.rs crates/hdf/src/journal.rs crates/hdf/src/meta.rs crates/hdf/src/raw.rs crates/hdf/src/space.rs

/root/repo/target/debug/deps/libdayu_hdf-90544163e1e1aa5a.rmeta: crates/hdf/src/lib.rs crates/hdf/src/alloc.rs crates/hdf/src/chunk.rs crates/hdf/src/codec.rs crates/hdf/src/crc.rs crates/hdf/src/dataset.rs crates/hdf/src/error.rs crates/hdf/src/file.rs crates/hdf/src/group.rs crates/hdf/src/heap.rs crates/hdf/src/hooks.rs crates/hdf/src/journal.rs crates/hdf/src/meta.rs crates/hdf/src/raw.rs crates/hdf/src/space.rs

crates/hdf/src/lib.rs:
crates/hdf/src/alloc.rs:
crates/hdf/src/chunk.rs:
crates/hdf/src/codec.rs:
crates/hdf/src/crc.rs:
crates/hdf/src/dataset.rs:
crates/hdf/src/error.rs:
crates/hdf/src/file.rs:
crates/hdf/src/group.rs:
crates/hdf/src/heap.rs:
crates/hdf/src/hooks.rs:
crates/hdf/src/journal.rs:
crates/hdf/src/meta.rs:
crates/hdf/src/raw.rs:
crates/hdf/src/space.rs:
