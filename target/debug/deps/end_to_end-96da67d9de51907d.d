/root/repo/target/debug/deps/end_to_end-96da67d9de51907d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-96da67d9de51907d: tests/end_to_end.rs

tests/end_to_end.rs:
