/root/repo/target/debug/deps/dayu_mapper-5f565601386abb5f.d: crates/mapper/src/lib.rs crates/mapper/src/config.rs crates/mapper/src/state.rs crates/mapper/src/timers.rs crates/mapper/src/vfd_profiler.rs crates/mapper/src/vol_profiler.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_mapper-5f565601386abb5f.rmeta: crates/mapper/src/lib.rs crates/mapper/src/config.rs crates/mapper/src/state.rs crates/mapper/src/timers.rs crates/mapper/src/vfd_profiler.rs crates/mapper/src/vol_profiler.rs Cargo.toml

crates/mapper/src/lib.rs:
crates/mapper/src/config.rs:
crates/mapper/src/state.rs:
crates/mapper/src/timers.rs:
crates/mapper/src/vfd_profiler.rs:
crates/mapper/src/vol_profiler.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
