/root/repo/target/debug/deps/recovery-e63574edf3cf6f73.d: crates/bench/src/bin/recovery.rs Cargo.toml

/root/repo/target/debug/deps/librecovery-e63574edf3cf6f73.rmeta: crates/bench/src/bin/recovery.rs Cargo.toml

crates/bench/src/bin/recovery.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
