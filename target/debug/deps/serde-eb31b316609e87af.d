/root/repo/target/debug/deps/serde-eb31b316609e87af.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-eb31b316609e87af.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
