/root/repo/target/debug/deps/dayu_workloads-7e77f31447afd858.d: crates/workloads/src/lib.rs crates/workloads/src/arldm.rs crates/workloads/src/bench_common.rs crates/workloads/src/corner_case.rs crates/workloads/src/ddmd.rs crates/workloads/src/h5bench.rs crates/workloads/src/pyflextrkr.rs crates/workloads/src/util.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_workloads-7e77f31447afd858.rmeta: crates/workloads/src/lib.rs crates/workloads/src/arldm.rs crates/workloads/src/bench_common.rs crates/workloads/src/corner_case.rs crates/workloads/src/ddmd.rs crates/workloads/src/h5bench.rs crates/workloads/src/pyflextrkr.rs crates/workloads/src/util.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/arldm.rs:
crates/workloads/src/bench_common.rs:
crates/workloads/src/corner_case.rs:
crates/workloads/src/ddmd.rs:
crates/workloads/src/h5bench.rs:
crates/workloads/src/pyflextrkr.rs:
crates/workloads/src/util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
