/root/repo/target/debug/deps/criterion-98cde3c48a57a3c9.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-98cde3c48a57a3c9.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
