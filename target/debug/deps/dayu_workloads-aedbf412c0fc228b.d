/root/repo/target/debug/deps/dayu_workloads-aedbf412c0fc228b.d: crates/workloads/src/lib.rs crates/workloads/src/arldm.rs crates/workloads/src/bench_common.rs crates/workloads/src/corner_case.rs crates/workloads/src/ddmd.rs crates/workloads/src/h5bench.rs crates/workloads/src/pyflextrkr.rs crates/workloads/src/util.rs

/root/repo/target/debug/deps/libdayu_workloads-aedbf412c0fc228b.rlib: crates/workloads/src/lib.rs crates/workloads/src/arldm.rs crates/workloads/src/bench_common.rs crates/workloads/src/corner_case.rs crates/workloads/src/ddmd.rs crates/workloads/src/h5bench.rs crates/workloads/src/pyflextrkr.rs crates/workloads/src/util.rs

/root/repo/target/debug/deps/libdayu_workloads-aedbf412c0fc228b.rmeta: crates/workloads/src/lib.rs crates/workloads/src/arldm.rs crates/workloads/src/bench_common.rs crates/workloads/src/corner_case.rs crates/workloads/src/ddmd.rs crates/workloads/src/h5bench.rs crates/workloads/src/pyflextrkr.rs crates/workloads/src/util.rs

crates/workloads/src/lib.rs:
crates/workloads/src/arldm.rs:
crates/workloads/src/bench_common.rs:
crates/workloads/src/corner_case.rs:
crates/workloads/src/ddmd.rs:
crates/workloads/src/h5bench.rs:
crates/workloads/src/pyflextrkr.rs:
crates/workloads/src/util.rs:
