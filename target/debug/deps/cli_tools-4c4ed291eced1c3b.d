/root/repo/target/debug/deps/cli_tools-4c4ed291eced1c3b.d: tests/cli_tools.rs

/root/repo/target/debug/deps/cli_tools-4c4ed291eced1c3b: tests/cli_tools.rs

tests/cli_tools.rs:
