/root/repo/target/debug/deps/dayu_advisor-a899cd82e7101009.d: crates/advisor/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_advisor-a899cd82e7101009.rmeta: crates/advisor/src/lib.rs Cargo.toml

crates/advisor/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
