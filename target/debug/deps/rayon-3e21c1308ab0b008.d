/root/repo/target/debug/deps/rayon-3e21c1308ab0b008.d: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-3e21c1308ab0b008.rmeta: /tmp/stubs/rayon/src/lib.rs

/tmp/stubs/rayon/src/lib.rs:
