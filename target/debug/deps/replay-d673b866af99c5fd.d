/root/repo/target/debug/deps/replay-d673b866af99c5fd.d: crates/bench/src/bin/replay.rs

/root/repo/target/debug/deps/replay-d673b866af99c5fd: crates/bench/src/bin/replay.rs

crates/bench/src/bin/replay.rs:
