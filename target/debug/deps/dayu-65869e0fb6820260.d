/root/repo/target/debug/deps/dayu-65869e0fb6820260.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdayu-65869e0fb6820260.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
