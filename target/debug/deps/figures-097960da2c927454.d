/root/repo/target/debug/deps/figures-097960da2c927454.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-097960da2c927454.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
