/root/repo/target/debug/deps/dayu_workflow-2e36376559cf4c6f.d: crates/workflow/src/lib.rs crates/workflow/src/bundle.rs crates/workflow/src/contract.rs crates/workflow/src/replay.rs crates/workflow/src/rerun.rs crates/workflow/src/retry.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs crates/workflow/src/transform.rs

/root/repo/target/debug/deps/dayu_workflow-2e36376559cf4c6f: crates/workflow/src/lib.rs crates/workflow/src/bundle.rs crates/workflow/src/contract.rs crates/workflow/src/replay.rs crates/workflow/src/rerun.rs crates/workflow/src/retry.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs crates/workflow/src/transform.rs

crates/workflow/src/lib.rs:
crates/workflow/src/bundle.rs:
crates/workflow/src/contract.rs:
crates/workflow/src/replay.rs:
crates/workflow/src/rerun.rs:
crates/workflow/src/retry.rs:
crates/workflow/src/runner.rs:
crates/workflow/src/spec.rs:
crates/workflow/src/transform.rs:
