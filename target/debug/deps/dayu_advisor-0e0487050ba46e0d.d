/root/repo/target/debug/deps/dayu_advisor-0e0487050ba46e0d.d: crates/advisor/src/lib.rs

/root/repo/target/debug/deps/libdayu_advisor-0e0487050ba46e0d.rlib: crates/advisor/src/lib.rs

/root/repo/target/debug/deps/libdayu_advisor-0e0487050ba46e0d.rmeta: crates/advisor/src/lib.rs

crates/advisor/src/lib.rs:
