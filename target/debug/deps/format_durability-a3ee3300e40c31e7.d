/root/repo/target/debug/deps/format_durability-a3ee3300e40c31e7.d: tests/format_durability.rs Cargo.toml

/root/repo/target/debug/deps/libformat_durability-a3ee3300e40c31e7.rmeta: tests/format_durability.rs Cargo.toml

tests/format_durability.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
