/root/repo/target/debug/deps/sim_engine-6e62dc05efeeb9cd.d: crates/bench/benches/sim_engine.rs Cargo.toml

/root/repo/target/debug/deps/libsim_engine-6e62dc05efeeb9cd.rmeta: crates/bench/benches/sim_engine.rs Cargo.toml

crates/bench/benches/sim_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
