/root/repo/target/debug/deps/pipeline-facae54a311d15b8.d: crates/bench/src/bin/pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libpipeline-facae54a311d15b8.rmeta: crates/bench/src/bin/pipeline.rs Cargo.toml

crates/bench/src/bin/pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
