/root/repo/target/debug/deps/dayu_trace-677aaf5bb18ee2a1.d: crates/trace/src/lib.rs crates/trace/src/binary.rs crates/trace/src/context.rs crates/trace/src/ids.rs crates/trace/src/intern.rs crates/trace/src/sha256.rs crates/trace/src/store.rs crates/trace/src/time.rs crates/trace/src/vfd.rs crates/trace/src/vol.rs crates/trace/src/wire.rs

/root/repo/target/debug/deps/libdayu_trace-677aaf5bb18ee2a1.rlib: crates/trace/src/lib.rs crates/trace/src/binary.rs crates/trace/src/context.rs crates/trace/src/ids.rs crates/trace/src/intern.rs crates/trace/src/sha256.rs crates/trace/src/store.rs crates/trace/src/time.rs crates/trace/src/vfd.rs crates/trace/src/vol.rs crates/trace/src/wire.rs

/root/repo/target/debug/deps/libdayu_trace-677aaf5bb18ee2a1.rmeta: crates/trace/src/lib.rs crates/trace/src/binary.rs crates/trace/src/context.rs crates/trace/src/ids.rs crates/trace/src/intern.rs crates/trace/src/sha256.rs crates/trace/src/store.rs crates/trace/src/time.rs crates/trace/src/vfd.rs crates/trace/src/vol.rs crates/trace/src/wire.rs

crates/trace/src/lib.rs:
crates/trace/src/binary.rs:
crates/trace/src/context.rs:
crates/trace/src/ids.rs:
crates/trace/src/intern.rs:
crates/trace/src/sha256.rs:
crates/trace/src/store.rs:
crates/trace/src/time.rs:
crates/trace/src/vfd.rs:
crates/trace/src/vol.rs:
crates/trace/src/wire.rs:
