/root/repo/target/debug/deps/context_stress-5738b745891498ce.d: crates/trace/tests/context_stress.rs Cargo.toml

/root/repo/target/debug/deps/libcontext_stress-5738b745891498ce.rmeta: crates/trace/tests/context_stress.rs Cargo.toml

crates/trace/tests/context_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
