/root/repo/target/debug/deps/journal_prop-6b363d6338ef7314.d: crates/hdf/tests/journal_prop.rs

/root/repo/target/debug/deps/journal_prop-6b363d6338ef7314: crates/hdf/tests/journal_prop.rs

crates/hdf/tests/journal_prop.rs:
