/root/repo/target/debug/deps/figures-47413caf4f21fb60.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-47413caf4f21fb60: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
