/root/repo/target/debug/deps/dayu_vfd-94dada9fbaeb53ae.d: crates/vfd/src/lib.rs crates/vfd/src/batch.rs crates/vfd/src/counting.rs crates/vfd/src/crash.rs crates/vfd/src/faulty.rs crates/vfd/src/file.rs crates/vfd/src/mem.rs crates/vfd/src/replay.rs

/root/repo/target/debug/deps/dayu_vfd-94dada9fbaeb53ae: crates/vfd/src/lib.rs crates/vfd/src/batch.rs crates/vfd/src/counting.rs crates/vfd/src/crash.rs crates/vfd/src/faulty.rs crates/vfd/src/file.rs crates/vfd/src/mem.rs crates/vfd/src/replay.rs

crates/vfd/src/lib.rs:
crates/vfd/src/batch.rs:
crates/vfd/src/counting.rs:
crates/vfd/src/crash.rs:
crates/vfd/src/faulty.rs:
crates/vfd/src/file.rs:
crates/vfd/src/mem.rs:
crates/vfd/src/replay.rs:
