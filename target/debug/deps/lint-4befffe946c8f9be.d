/root/repo/target/debug/deps/lint-4befffe946c8f9be.d: crates/bench/src/bin/lint.rs Cargo.toml

/root/repo/target/debug/deps/liblint-4befffe946c8f9be.rmeta: crates/bench/src/bin/lint.rs Cargo.toml

crates/bench/src/bin/lint.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
