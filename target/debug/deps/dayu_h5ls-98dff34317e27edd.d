/root/repo/target/debug/deps/dayu_h5ls-98dff34317e27edd.d: crates/core/src/bin/dayu-h5ls.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_h5ls-98dff34317e27edd.rmeta: crates/core/src/bin/dayu-h5ls.rs Cargo.toml

crates/core/src/bin/dayu-h5ls.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
