/root/repo/target/debug/deps/proptest-ad126dd73efa8aa4.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-ad126dd73efa8aa4.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
