/root/repo/target/debug/deps/end_to_end-82931b3fa1725458.d: tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-82931b3fa1725458.rmeta: tests/end_to_end.rs Cargo.toml

tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
