/root/repo/target/debug/deps/dayu_advisor-96d9a9e526835e11.d: crates/advisor/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_advisor-96d9a9e526835e11.rmeta: crates/advisor/src/lib.rs Cargo.toml

crates/advisor/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
