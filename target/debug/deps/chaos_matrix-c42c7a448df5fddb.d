/root/repo/target/debug/deps/chaos_matrix-c42c7a448df5fddb.d: tests/chaos_matrix.rs Cargo.toml

/root/repo/target/debug/deps/libchaos_matrix-c42c7a448df5fddb.rmeta: tests/chaos_matrix.rs Cargo.toml

tests/chaos_matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
