/root/repo/target/debug/deps/format_durability-8da205c83fcf41d4.d: tests/format_durability.rs

/root/repo/target/debug/deps/format_durability-8da205c83fcf41d4: tests/format_durability.rs

tests/format_durability.rs:
