/root/repo/target/debug/deps/parking_lot-8f34396a98802e15.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-8f34396a98802e15.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-8f34396a98802e15.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
