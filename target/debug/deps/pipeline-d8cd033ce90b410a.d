/root/repo/target/debug/deps/pipeline-d8cd033ce90b410a.d: crates/bench/src/bin/pipeline.rs

/root/repo/target/debug/deps/pipeline-d8cd033ce90b410a: crates/bench/src/bin/pipeline.rs

crates/bench/src/bin/pipeline.rs:
