/root/repo/target/debug/deps/fsck_prop-0e8c848afe0270c7.d: crates/lint/tests/fsck_prop.rs Cargo.toml

/root/repo/target/debug/deps/libfsck_prop-0e8c848afe0270c7.rmeta: crates/lint/tests/fsck_prop.rs Cargo.toml

crates/lint/tests/fsck_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
