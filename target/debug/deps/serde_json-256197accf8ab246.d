/root/repo/target/debug/deps/serde_json-256197accf8ab246.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-256197accf8ab246.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-256197accf8ab246.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
