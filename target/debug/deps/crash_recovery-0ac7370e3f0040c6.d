/root/repo/target/debug/deps/crash_recovery-0ac7370e3f0040c6.d: tests/crash_recovery.rs

/root/repo/target/debug/deps/crash_recovery-0ac7370e3f0040c6: tests/crash_recovery.rs

tests/crash_recovery.rs:
