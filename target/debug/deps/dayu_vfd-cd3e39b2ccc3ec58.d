/root/repo/target/debug/deps/dayu_vfd-cd3e39b2ccc3ec58.d: crates/vfd/src/lib.rs crates/vfd/src/batch.rs crates/vfd/src/counting.rs crates/vfd/src/crash.rs crates/vfd/src/faulty.rs crates/vfd/src/file.rs crates/vfd/src/mem.rs crates/vfd/src/replay.rs

/root/repo/target/debug/deps/libdayu_vfd-cd3e39b2ccc3ec58.rlib: crates/vfd/src/lib.rs crates/vfd/src/batch.rs crates/vfd/src/counting.rs crates/vfd/src/crash.rs crates/vfd/src/faulty.rs crates/vfd/src/file.rs crates/vfd/src/mem.rs crates/vfd/src/replay.rs

/root/repo/target/debug/deps/libdayu_vfd-cd3e39b2ccc3ec58.rmeta: crates/vfd/src/lib.rs crates/vfd/src/batch.rs crates/vfd/src/counting.rs crates/vfd/src/crash.rs crates/vfd/src/faulty.rs crates/vfd/src/file.rs crates/vfd/src/mem.rs crates/vfd/src/replay.rs

crates/vfd/src/lib.rs:
crates/vfd/src/batch.rs:
crates/vfd/src/counting.rs:
crates/vfd/src/crash.rs:
crates/vfd/src/faulty.rs:
crates/vfd/src/file.rs:
crates/vfd/src/mem.rs:
crates/vfd/src/replay.rs:
