/root/repo/target/debug/deps/dayu_analyzer-585f431d407584f2.d: crates/analyzer/src/lib.rs crates/analyzer/src/build.rs crates/analyzer/src/detect.rs crates/analyzer/src/diff.rs crates/analyzer/src/export.rs crates/analyzer/src/graph.rs crates/analyzer/src/resolution.rs

/root/repo/target/debug/deps/libdayu_analyzer-585f431d407584f2.rlib: crates/analyzer/src/lib.rs crates/analyzer/src/build.rs crates/analyzer/src/detect.rs crates/analyzer/src/diff.rs crates/analyzer/src/export.rs crates/analyzer/src/graph.rs crates/analyzer/src/resolution.rs

/root/repo/target/debug/deps/libdayu_analyzer-585f431d407584f2.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/build.rs crates/analyzer/src/detect.rs crates/analyzer/src/diff.rs crates/analyzer/src/export.rs crates/analyzer/src/graph.rs crates/analyzer/src/resolution.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/build.rs:
crates/analyzer/src/detect.rs:
crates/analyzer/src/diff.rs:
crates/analyzer/src/export.rs:
crates/analyzer/src/graph.rs:
crates/analyzer/src/resolution.rs:
