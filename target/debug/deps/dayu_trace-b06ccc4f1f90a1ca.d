/root/repo/target/debug/deps/dayu_trace-b06ccc4f1f90a1ca.d: crates/trace/src/lib.rs crates/trace/src/binary.rs crates/trace/src/context.rs crates/trace/src/ids.rs crates/trace/src/intern.rs crates/trace/src/sha256.rs crates/trace/src/store.rs crates/trace/src/time.rs crates/trace/src/vfd.rs crates/trace/src/vol.rs crates/trace/src/wire.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_trace-b06ccc4f1f90a1ca.rmeta: crates/trace/src/lib.rs crates/trace/src/binary.rs crates/trace/src/context.rs crates/trace/src/ids.rs crates/trace/src/intern.rs crates/trace/src/sha256.rs crates/trace/src/store.rs crates/trace/src/time.rs crates/trace/src/vfd.rs crates/trace/src/vol.rs crates/trace/src/wire.rs Cargo.toml

crates/trace/src/lib.rs:
crates/trace/src/binary.rs:
crates/trace/src/context.rs:
crates/trace/src/ids.rs:
crates/trace/src/intern.rs:
crates/trace/src/sha256.rs:
crates/trace/src/store.rs:
crates/trace/src/time.rs:
crates/trace/src/vfd.rs:
crates/trace/src/vol.rs:
crates/trace/src/wire.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
