/root/repo/target/debug/deps/io-3b3288fc19086379.d: crates/bench/src/bin/io.rs Cargo.toml

/root/repo/target/debug/deps/libio-3b3288fc19086379.rmeta: crates/bench/src/bin/io.rs Cargo.toml

crates/bench/src/bin/io.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
