/root/repo/target/debug/deps/rand-8a13543694e9e530.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8a13543694e9e530.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-8a13543694e9e530.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
