/root/repo/target/debug/deps/dayu_analyze-d3f37f263134a5bf.d: crates/core/src/bin/dayu-analyze.rs

/root/repo/target/debug/deps/dayu_analyze-d3f37f263134a5bf: crates/core/src/bin/dayu-analyze.rs

crates/core/src/bin/dayu-analyze.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
