/root/repo/target/debug/deps/mapper_overhead-4020fbb91c12f4db.d: crates/bench/benches/mapper_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libmapper_overhead-4020fbb91c12f4db.rmeta: crates/bench/benches/mapper_overhead.rs Cargo.toml

crates/bench/benches/mapper_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
