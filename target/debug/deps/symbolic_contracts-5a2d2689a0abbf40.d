/root/repo/target/debug/deps/symbolic_contracts-5a2d2689a0abbf40.d: tests/symbolic_contracts.rs Cargo.toml

/root/repo/target/debug/deps/libsymbolic_contracts-5a2d2689a0abbf40.rmeta: tests/symbolic_contracts.rs Cargo.toml

tests/symbolic_contracts.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
