/root/repo/target/debug/deps/seeded_defects-9a27c914dfb18bc5.d: crates/lint/tests/seeded_defects.rs Cargo.toml

/root/repo/target/debug/deps/libseeded_defects-9a27c914dfb18bc5.rmeta: crates/lint/tests/seeded_defects.rs Cargo.toml

crates/lint/tests/seeded_defects.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
