/root/repo/target/debug/deps/io-216df96f268298d3.d: crates/bench/src/bin/io.rs

/root/repo/target/debug/deps/io-216df96f268298d3: crates/bench/src/bin/io.rs

crates/bench/src/bin/io.rs:
