/root/repo/target/debug/deps/dayu_bench-bbd4895cd5cabbb1.d: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/fig01.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig_graphs.rs crates/bench/src/io.rs crates/bench/src/lint.rs crates/bench/src/pipeline.rs crates/bench/src/recovery.rs crates/bench/src/replay.rs crates/bench/src/tables.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_bench-bbd4895cd5cabbb1.rmeta: crates/bench/src/lib.rs crates/bench/src/ablation.rs crates/bench/src/fig01.rs crates/bench/src/fig09.rs crates/bench/src/fig10.rs crates/bench/src/fig11.rs crates/bench/src/fig12.rs crates/bench/src/fig13.rs crates/bench/src/fig_graphs.rs crates/bench/src/io.rs crates/bench/src/lint.rs crates/bench/src/pipeline.rs crates/bench/src/recovery.rs crates/bench/src/replay.rs crates/bench/src/tables.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/ablation.rs:
crates/bench/src/fig01.rs:
crates/bench/src/fig09.rs:
crates/bench/src/fig10.rs:
crates/bench/src/fig11.rs:
crates/bench/src/fig12.rs:
crates/bench/src/fig13.rs:
crates/bench/src/fig_graphs.rs:
crates/bench/src/io.rs:
crates/bench/src/lint.rs:
crates/bench/src/pipeline.rs:
crates/bench/src/recovery.rs:
crates/bench/src/replay.rs:
crates/bench/src/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
