/root/repo/target/debug/deps/journal_prop-e80dc8baafc00d14.d: crates/hdf/tests/journal_prop.rs Cargo.toml

/root/repo/target/debug/deps/libjournal_prop-e80dc8baafc00d14.rmeta: crates/hdf/tests/journal_prop.rs Cargo.toml

crates/hdf/tests/journal_prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
