/root/repo/target/debug/deps/replay-a123d50e4ebf4274.d: crates/bench/src/bin/replay.rs Cargo.toml

/root/repo/target/debug/deps/libreplay-a123d50e4ebf4274.rmeta: crates/bench/src/bin/replay.rs Cargo.toml

crates/bench/src/bin/replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
