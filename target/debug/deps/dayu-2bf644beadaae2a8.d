/root/repo/target/debug/deps/dayu-2bf644beadaae2a8.d: src/lib.rs

/root/repo/target/debug/deps/dayu-2bf644beadaae2a8: src/lib.rs

src/lib.rs:
