/root/repo/target/debug/deps/dayu_workflow-cb594f655b9ced01.d: crates/workflow/src/lib.rs crates/workflow/src/bundle.rs crates/workflow/src/contract.rs crates/workflow/src/replay.rs crates/workflow/src/rerun.rs crates/workflow/src/retry.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs crates/workflow/src/transform.rs

/root/repo/target/debug/deps/libdayu_workflow-cb594f655b9ced01.rlib: crates/workflow/src/lib.rs crates/workflow/src/bundle.rs crates/workflow/src/contract.rs crates/workflow/src/replay.rs crates/workflow/src/rerun.rs crates/workflow/src/retry.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs crates/workflow/src/transform.rs

/root/repo/target/debug/deps/libdayu_workflow-cb594f655b9ced01.rmeta: crates/workflow/src/lib.rs crates/workflow/src/bundle.rs crates/workflow/src/contract.rs crates/workflow/src/replay.rs crates/workflow/src/rerun.rs crates/workflow/src/retry.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs crates/workflow/src/transform.rs

crates/workflow/src/lib.rs:
crates/workflow/src/bundle.rs:
crates/workflow/src/contract.rs:
crates/workflow/src/replay.rs:
crates/workflow/src/rerun.rs:
crates/workflow/src/retry.rs:
crates/workflow/src/runner.rs:
crates/workflow/src/spec.rs:
crates/workflow/src/transform.rs:
