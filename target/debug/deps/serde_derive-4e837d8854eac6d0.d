/root/repo/target/debug/deps/serde_derive-4e837d8854eac6d0.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-4e837d8854eac6d0.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
