/root/repo/target/debug/deps/criterion-49df2d07b75f4108.d: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-49df2d07b75f4108.rlib: /tmp/stubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-49df2d07b75f4108.rmeta: /tmp/stubs/criterion/src/lib.rs

/tmp/stubs/criterion/src/lib.rs:
