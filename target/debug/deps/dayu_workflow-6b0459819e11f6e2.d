/root/repo/target/debug/deps/dayu_workflow-6b0459819e11f6e2.d: crates/workflow/src/lib.rs crates/workflow/src/bundle.rs crates/workflow/src/contract.rs crates/workflow/src/replay.rs crates/workflow/src/rerun.rs crates/workflow/src/retry.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs crates/workflow/src/transform.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_workflow-6b0459819e11f6e2.rmeta: crates/workflow/src/lib.rs crates/workflow/src/bundle.rs crates/workflow/src/contract.rs crates/workflow/src/replay.rs crates/workflow/src/rerun.rs crates/workflow/src/retry.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs crates/workflow/src/transform.rs Cargo.toml

crates/workflow/src/lib.rs:
crates/workflow/src/bundle.rs:
crates/workflow/src/contract.rs:
crates/workflow/src/replay.rs:
crates/workflow/src/rerun.rs:
crates/workflow/src/retry.rs:
crates/workflow/src/runner.rs:
crates/workflow/src/spec.rs:
crates/workflow/src/transform.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
