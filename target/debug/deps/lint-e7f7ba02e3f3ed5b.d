/root/repo/target/debug/deps/lint-e7f7ba02e3f3ed5b.d: crates/bench/src/bin/lint.rs

/root/repo/target/debug/deps/lint-e7f7ba02e3f3ed5b: crates/bench/src/bin/lint.rs

crates/bench/src/bin/lint.rs:
