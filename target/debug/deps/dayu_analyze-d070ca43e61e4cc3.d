/root/repo/target/debug/deps/dayu_analyze-d070ca43e61e4cc3.d: crates/core/src/bin/dayu-analyze.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_analyze-d070ca43e61e4cc3.rmeta: crates/core/src/bin/dayu-analyze.rs Cargo.toml

crates/core/src/bin/dayu-analyze.rs:
Cargo.toml:

# env-dep:CARGO_PKG_VERSION=0.1.0
# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
