/root/repo/target/debug/deps/parking_lot-aba17ac80103edf8.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-aba17ac80103edf8.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
