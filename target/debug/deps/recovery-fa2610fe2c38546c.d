/root/repo/target/debug/deps/recovery-fa2610fe2c38546c.d: crates/bench/src/bin/recovery.rs

/root/repo/target/debug/deps/recovery-fa2610fe2c38546c: crates/bench/src/bin/recovery.rs

crates/bench/src/bin/recovery.rs:
