/root/repo/target/debug/deps/paper_claims-466efdaff0234574.d: tests/paper_claims.rs Cargo.toml

/root/repo/target/debug/deps/libpaper_claims-466efdaff0234574.rmeta: tests/paper_claims.rs Cargo.toml

tests/paper_claims.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
