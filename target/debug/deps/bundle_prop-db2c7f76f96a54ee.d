/root/repo/target/debug/deps/bundle_prop-db2c7f76f96a54ee.d: crates/workflow/tests/bundle_prop.rs

/root/repo/target/debug/deps/bundle_prop-db2c7f76f96a54ee: crates/workflow/tests/bundle_prop.rs

crates/workflow/tests/bundle_prop.rs:
