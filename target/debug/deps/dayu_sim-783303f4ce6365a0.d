/root/repo/target/debug/deps/dayu_sim-783303f4ce6365a0.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/program.rs crates/sim/src/tiers.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_sim-783303f4ce6365a0.rmeta: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/program.rs crates/sim/src/tiers.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/cluster.rs:
crates/sim/src/engine.rs:
crates/sim/src/program.rs:
crates/sim/src/tiers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
