/root/repo/target/debug/deps/dayu_analyze-8b70bdbfe0f0dc29.d: crates/core/src/bin/dayu-analyze.rs

/root/repo/target/debug/deps/dayu_analyze-8b70bdbfe0f0dc29: crates/core/src/bin/dayu-analyze.rs

crates/core/src/bin/dayu-analyze.rs:

# env-dep:CARGO_PKG_VERSION=0.1.0
