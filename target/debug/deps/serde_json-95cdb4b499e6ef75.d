/root/repo/target/debug/deps/serde_json-95cdb4b499e6ef75.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-95cdb4b499e6ef75.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
