/root/repo/target/debug/deps/dayu_vfd-33d885b27fb58f87.d: crates/vfd/src/lib.rs crates/vfd/src/batch.rs crates/vfd/src/counting.rs crates/vfd/src/crash.rs crates/vfd/src/faulty.rs crates/vfd/src/file.rs crates/vfd/src/mem.rs crates/vfd/src/replay.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_vfd-33d885b27fb58f87.rmeta: crates/vfd/src/lib.rs crates/vfd/src/batch.rs crates/vfd/src/counting.rs crates/vfd/src/crash.rs crates/vfd/src/faulty.rs crates/vfd/src/file.rs crates/vfd/src/mem.rs crates/vfd/src/replay.rs Cargo.toml

crates/vfd/src/lib.rs:
crates/vfd/src/batch.rs:
crates/vfd/src/counting.rs:
crates/vfd/src/crash.rs:
crates/vfd/src/faulty.rs:
crates/vfd/src/file.rs:
crates/vfd/src/mem.rs:
crates/vfd/src/replay.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
