/root/repo/target/debug/deps/dayu_core-ff8b4f56360865e1.d: crates/core/src/lib.rs crates/core/src/auto.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_core-ff8b4f56360865e1.rmeta: crates/core/src/lib.rs crates/core/src/auto.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/auto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
