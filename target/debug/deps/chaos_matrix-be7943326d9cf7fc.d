/root/repo/target/debug/deps/chaos_matrix-be7943326d9cf7fc.d: tests/chaos_matrix.rs

/root/repo/target/debug/deps/chaos_matrix-be7943326d9cf7fc: tests/chaos_matrix.rs

tests/chaos_matrix.rs:
