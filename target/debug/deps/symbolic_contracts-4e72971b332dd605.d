/root/repo/target/debug/deps/symbolic_contracts-4e72971b332dd605.d: tests/symbolic_contracts.rs

/root/repo/target/debug/deps/symbolic_contracts-4e72971b332dd605: tests/symbolic_contracts.rs

tests/symbolic_contracts.rs:
