/root/repo/target/debug/deps/dayu_mapper-30d2e0531bdd4d37.d: crates/mapper/src/lib.rs crates/mapper/src/config.rs crates/mapper/src/state.rs crates/mapper/src/timers.rs crates/mapper/src/vfd_profiler.rs crates/mapper/src/vol_profiler.rs

/root/repo/target/debug/deps/libdayu_mapper-30d2e0531bdd4d37.rlib: crates/mapper/src/lib.rs crates/mapper/src/config.rs crates/mapper/src/state.rs crates/mapper/src/timers.rs crates/mapper/src/vfd_profiler.rs crates/mapper/src/vol_profiler.rs

/root/repo/target/debug/deps/libdayu_mapper-30d2e0531bdd4d37.rmeta: crates/mapper/src/lib.rs crates/mapper/src/config.rs crates/mapper/src/state.rs crates/mapper/src/timers.rs crates/mapper/src/vfd_profiler.rs crates/mapper/src/vol_profiler.rs

crates/mapper/src/lib.rs:
crates/mapper/src/config.rs:
crates/mapper/src/state.rs:
crates/mapper/src/timers.rs:
crates/mapper/src/vfd_profiler.rs:
crates/mapper/src/vol_profiler.rs:
