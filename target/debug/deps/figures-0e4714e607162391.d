/root/repo/target/debug/deps/figures-0e4714e607162391.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-0e4714e607162391.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
