/root/repo/target/debug/deps/serde-a4e68f547893c479.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a4e68f547893c479.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-a4e68f547893c479.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
