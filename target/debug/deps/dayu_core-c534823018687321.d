/root/repo/target/debug/deps/dayu_core-c534823018687321.d: crates/core/src/lib.rs crates/core/src/auto.rs Cargo.toml

/root/repo/target/debug/deps/libdayu_core-c534823018687321.rmeta: crates/core/src/lib.rs crates/core/src/auto.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/auto.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
