/root/repo/target/debug/deps/dayu_sim-77e4a07251ddd51c.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/program.rs crates/sim/src/tiers.rs

/root/repo/target/debug/deps/libdayu_sim-77e4a07251ddd51c.rlib: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/program.rs crates/sim/src/tiers.rs

/root/repo/target/debug/deps/libdayu_sim-77e4a07251ddd51c.rmeta: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/program.rs crates/sim/src/tiers.rs

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/cluster.rs:
crates/sim/src/engine.rs:
crates/sim/src/program.rs:
crates/sim/src/tiers.rs:
