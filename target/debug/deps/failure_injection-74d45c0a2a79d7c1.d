/root/repo/target/debug/deps/failure_injection-74d45c0a2a79d7c1.d: tests/failure_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfailure_injection-74d45c0a2a79d7c1.rmeta: tests/failure_injection.rs Cargo.toml

tests/failure_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
