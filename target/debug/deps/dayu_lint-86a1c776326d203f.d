/root/repo/target/debug/deps/dayu_lint-86a1c776326d203f.d: crates/lint/src/lib.rs crates/lint/src/contract.rs crates/lint/src/extent.rs crates/lint/src/fsck.rs crates/lint/src/hazard.rs crates/lint/src/hb.rs crates/lint/src/lifetime.rs crates/lint/src/model.rs crates/lint/src/repair.rs crates/lint/src/symbolic.rs crates/lint/src/verify.rs

/root/repo/target/debug/deps/libdayu_lint-86a1c776326d203f.rlib: crates/lint/src/lib.rs crates/lint/src/contract.rs crates/lint/src/extent.rs crates/lint/src/fsck.rs crates/lint/src/hazard.rs crates/lint/src/hb.rs crates/lint/src/lifetime.rs crates/lint/src/model.rs crates/lint/src/repair.rs crates/lint/src/symbolic.rs crates/lint/src/verify.rs

/root/repo/target/debug/deps/libdayu_lint-86a1c776326d203f.rmeta: crates/lint/src/lib.rs crates/lint/src/contract.rs crates/lint/src/extent.rs crates/lint/src/fsck.rs crates/lint/src/hazard.rs crates/lint/src/hb.rs crates/lint/src/lifetime.rs crates/lint/src/model.rs crates/lint/src/repair.rs crates/lint/src/symbolic.rs crates/lint/src/verify.rs

crates/lint/src/lib.rs:
crates/lint/src/contract.rs:
crates/lint/src/extent.rs:
crates/lint/src/fsck.rs:
crates/lint/src/hazard.rs:
crates/lint/src/hb.rs:
crates/lint/src/lifetime.rs:
crates/lint/src/model.rs:
crates/lint/src/repair.rs:
crates/lint/src/symbolic.rs:
crates/lint/src/verify.rs:
