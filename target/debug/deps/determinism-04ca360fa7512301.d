/root/repo/target/debug/deps/determinism-04ca360fa7512301.d: crates/analyzer/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-04ca360fa7512301.rmeta: crates/analyzer/tests/determinism.rs Cargo.toml

crates/analyzer/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
