/root/repo/target/debug/examples/ddmd_pipeline-16051dae07a41809.d: examples/ddmd_pipeline.rs

/root/repo/target/debug/examples/ddmd_pipeline-16051dae07a41809: examples/ddmd_pipeline.rs

examples/ddmd_pipeline.rs:
