/root/repo/target/debug/examples/arldm_layout-121a8c126df7d8c7.d: examples/arldm_layout.rs

/root/repo/target/debug/examples/arldm_layout-121a8c126df7d8c7: examples/arldm_layout.rs

examples/arldm_layout.rs:
