/root/repo/target/debug/examples/quickstart-058c3179f7ed7b11.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-058c3179f7ed7b11: examples/quickstart.rs

examples/quickstart.rs:
