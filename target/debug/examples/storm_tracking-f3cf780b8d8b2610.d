/root/repo/target/debug/examples/storm_tracking-f3cf780b8d8b2610.d: examples/storm_tracking.rs

/root/repo/target/debug/examples/storm_tracking-f3cf780b8d8b2610: examples/storm_tracking.rs

examples/storm_tracking.rs:
