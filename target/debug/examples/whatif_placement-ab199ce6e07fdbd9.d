/root/repo/target/debug/examples/whatif_placement-ab199ce6e07fdbd9.d: examples/whatif_placement.rs

/root/repo/target/debug/examples/whatif_placement-ab199ce6e07fdbd9: examples/whatif_placement.rs

examples/whatif_placement.rs:
