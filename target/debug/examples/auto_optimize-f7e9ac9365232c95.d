/root/repo/target/debug/examples/auto_optimize-f7e9ac9365232c95.d: examples/auto_optimize.rs

/root/repo/target/debug/examples/auto_optimize-f7e9ac9365232c95: examples/auto_optimize.rs

examples/auto_optimize.rs:
