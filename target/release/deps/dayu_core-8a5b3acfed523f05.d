/root/repo/target/release/deps/dayu_core-8a5b3acfed523f05.d: crates/core/src/lib.rs crates/core/src/auto.rs

/root/repo/target/release/deps/libdayu_core-8a5b3acfed523f05.rlib: crates/core/src/lib.rs crates/core/src/auto.rs

/root/repo/target/release/deps/libdayu_core-8a5b3acfed523f05.rmeta: crates/core/src/lib.rs crates/core/src/auto.rs

crates/core/src/lib.rs:
crates/core/src/auto.rs:
