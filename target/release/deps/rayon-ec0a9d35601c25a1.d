/root/repo/target/release/deps/rayon-ec0a9d35601c25a1.d: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-ec0a9d35601c25a1.rlib: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-ec0a9d35601c25a1.rmeta: /tmp/stubs/rayon/src/lib.rs

/tmp/stubs/rayon/src/lib.rs:
