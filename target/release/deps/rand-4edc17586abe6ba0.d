/root/repo/target/release/deps/rand-4edc17586abe6ba0.d: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-4edc17586abe6ba0.rlib: /tmp/stubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-4edc17586abe6ba0.rmeta: /tmp/stubs/rand/src/lib.rs

/tmp/stubs/rand/src/lib.rs:
