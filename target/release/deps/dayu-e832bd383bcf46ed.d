/root/repo/target/release/deps/dayu-e832bd383bcf46ed.d: src/lib.rs

/root/repo/target/release/deps/libdayu-e832bd383bcf46ed.rlib: src/lib.rs

/root/repo/target/release/deps/libdayu-e832bd383bcf46ed.rmeta: src/lib.rs

src/lib.rs:
