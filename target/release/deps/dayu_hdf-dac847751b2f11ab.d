/root/repo/target/release/deps/dayu_hdf-dac847751b2f11ab.d: crates/hdf/src/lib.rs crates/hdf/src/alloc.rs crates/hdf/src/chunk.rs crates/hdf/src/codec.rs crates/hdf/src/crc.rs crates/hdf/src/dataset.rs crates/hdf/src/error.rs crates/hdf/src/file.rs crates/hdf/src/group.rs crates/hdf/src/heap.rs crates/hdf/src/hooks.rs crates/hdf/src/journal.rs crates/hdf/src/meta.rs crates/hdf/src/raw.rs crates/hdf/src/space.rs

/root/repo/target/release/deps/libdayu_hdf-dac847751b2f11ab.rlib: crates/hdf/src/lib.rs crates/hdf/src/alloc.rs crates/hdf/src/chunk.rs crates/hdf/src/codec.rs crates/hdf/src/crc.rs crates/hdf/src/dataset.rs crates/hdf/src/error.rs crates/hdf/src/file.rs crates/hdf/src/group.rs crates/hdf/src/heap.rs crates/hdf/src/hooks.rs crates/hdf/src/journal.rs crates/hdf/src/meta.rs crates/hdf/src/raw.rs crates/hdf/src/space.rs

/root/repo/target/release/deps/libdayu_hdf-dac847751b2f11ab.rmeta: crates/hdf/src/lib.rs crates/hdf/src/alloc.rs crates/hdf/src/chunk.rs crates/hdf/src/codec.rs crates/hdf/src/crc.rs crates/hdf/src/dataset.rs crates/hdf/src/error.rs crates/hdf/src/file.rs crates/hdf/src/group.rs crates/hdf/src/heap.rs crates/hdf/src/hooks.rs crates/hdf/src/journal.rs crates/hdf/src/meta.rs crates/hdf/src/raw.rs crates/hdf/src/space.rs

crates/hdf/src/lib.rs:
crates/hdf/src/alloc.rs:
crates/hdf/src/chunk.rs:
crates/hdf/src/codec.rs:
crates/hdf/src/crc.rs:
crates/hdf/src/dataset.rs:
crates/hdf/src/error.rs:
crates/hdf/src/file.rs:
crates/hdf/src/group.rs:
crates/hdf/src/heap.rs:
crates/hdf/src/hooks.rs:
crates/hdf/src/journal.rs:
crates/hdf/src/meta.rs:
crates/hdf/src/raw.rs:
crates/hdf/src/space.rs:
