/root/repo/target/release/deps/dayu_sim-6950a2fe53ffef1c.d: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/program.rs crates/sim/src/tiers.rs

/root/repo/target/release/deps/libdayu_sim-6950a2fe53ffef1c.rlib: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/program.rs crates/sim/src/tiers.rs

/root/repo/target/release/deps/libdayu_sim-6950a2fe53ffef1c.rmeta: crates/sim/src/lib.rs crates/sim/src/cache.rs crates/sim/src/cluster.rs crates/sim/src/engine.rs crates/sim/src/program.rs crates/sim/src/tiers.rs

crates/sim/src/lib.rs:
crates/sim/src/cache.rs:
crates/sim/src/cluster.rs:
crates/sim/src/engine.rs:
crates/sim/src/program.rs:
crates/sim/src/tiers.rs:
