/root/repo/target/release/deps/serde_derive-eed7d1fcc6df9de9.d: /tmp/stubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-eed7d1fcc6df9de9.so: /tmp/stubs/serde_derive/src/lib.rs

/tmp/stubs/serde_derive/src/lib.rs:
