/root/repo/target/release/deps/dayu_lint-081380ad8845f3ed.d: crates/lint/src/lib.rs crates/lint/src/contract.rs crates/lint/src/extent.rs crates/lint/src/fsck.rs crates/lint/src/hazard.rs crates/lint/src/hb.rs crates/lint/src/lifetime.rs crates/lint/src/model.rs crates/lint/src/repair.rs crates/lint/src/symbolic.rs crates/lint/src/verify.rs

/root/repo/target/release/deps/libdayu_lint-081380ad8845f3ed.rlib: crates/lint/src/lib.rs crates/lint/src/contract.rs crates/lint/src/extent.rs crates/lint/src/fsck.rs crates/lint/src/hazard.rs crates/lint/src/hb.rs crates/lint/src/lifetime.rs crates/lint/src/model.rs crates/lint/src/repair.rs crates/lint/src/symbolic.rs crates/lint/src/verify.rs

/root/repo/target/release/deps/libdayu_lint-081380ad8845f3ed.rmeta: crates/lint/src/lib.rs crates/lint/src/contract.rs crates/lint/src/extent.rs crates/lint/src/fsck.rs crates/lint/src/hazard.rs crates/lint/src/hb.rs crates/lint/src/lifetime.rs crates/lint/src/model.rs crates/lint/src/repair.rs crates/lint/src/symbolic.rs crates/lint/src/verify.rs

crates/lint/src/lib.rs:
crates/lint/src/contract.rs:
crates/lint/src/extent.rs:
crates/lint/src/fsck.rs:
crates/lint/src/hazard.rs:
crates/lint/src/hb.rs:
crates/lint/src/lifetime.rs:
crates/lint/src/model.rs:
crates/lint/src/repair.rs:
crates/lint/src/symbolic.rs:
crates/lint/src/verify.rs:
