/root/repo/target/release/deps/dayu_mapper-7bc28a48c5008346.d: crates/mapper/src/lib.rs crates/mapper/src/config.rs crates/mapper/src/state.rs crates/mapper/src/timers.rs crates/mapper/src/vfd_profiler.rs crates/mapper/src/vol_profiler.rs

/root/repo/target/release/deps/libdayu_mapper-7bc28a48c5008346.rlib: crates/mapper/src/lib.rs crates/mapper/src/config.rs crates/mapper/src/state.rs crates/mapper/src/timers.rs crates/mapper/src/vfd_profiler.rs crates/mapper/src/vol_profiler.rs

/root/repo/target/release/deps/libdayu_mapper-7bc28a48c5008346.rmeta: crates/mapper/src/lib.rs crates/mapper/src/config.rs crates/mapper/src/state.rs crates/mapper/src/timers.rs crates/mapper/src/vfd_profiler.rs crates/mapper/src/vol_profiler.rs

crates/mapper/src/lib.rs:
crates/mapper/src/config.rs:
crates/mapper/src/state.rs:
crates/mapper/src/timers.rs:
crates/mapper/src/vfd_profiler.rs:
crates/mapper/src/vol_profiler.rs:
