/root/repo/target/release/deps/dayu_workloads-2981d68f2b214258.d: crates/workloads/src/lib.rs crates/workloads/src/arldm.rs crates/workloads/src/bench_common.rs crates/workloads/src/corner_case.rs crates/workloads/src/ddmd.rs crates/workloads/src/h5bench.rs crates/workloads/src/pyflextrkr.rs crates/workloads/src/util.rs

/root/repo/target/release/deps/libdayu_workloads-2981d68f2b214258.rlib: crates/workloads/src/lib.rs crates/workloads/src/arldm.rs crates/workloads/src/bench_common.rs crates/workloads/src/corner_case.rs crates/workloads/src/ddmd.rs crates/workloads/src/h5bench.rs crates/workloads/src/pyflextrkr.rs crates/workloads/src/util.rs

/root/repo/target/release/deps/libdayu_workloads-2981d68f2b214258.rmeta: crates/workloads/src/lib.rs crates/workloads/src/arldm.rs crates/workloads/src/bench_common.rs crates/workloads/src/corner_case.rs crates/workloads/src/ddmd.rs crates/workloads/src/h5bench.rs crates/workloads/src/pyflextrkr.rs crates/workloads/src/util.rs

crates/workloads/src/lib.rs:
crates/workloads/src/arldm.rs:
crates/workloads/src/bench_common.rs:
crates/workloads/src/corner_case.rs:
crates/workloads/src/ddmd.rs:
crates/workloads/src/h5bench.rs:
crates/workloads/src/pyflextrkr.rs:
crates/workloads/src/util.rs:
