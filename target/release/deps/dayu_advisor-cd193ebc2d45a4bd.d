/root/repo/target/release/deps/dayu_advisor-cd193ebc2d45a4bd.d: crates/advisor/src/lib.rs

/root/repo/target/release/deps/libdayu_advisor-cd193ebc2d45a4bd.rlib: crates/advisor/src/lib.rs

/root/repo/target/release/deps/libdayu_advisor-cd193ebc2d45a4bd.rmeta: crates/advisor/src/lib.rs

crates/advisor/src/lib.rs:
