/root/repo/target/release/deps/io-b5c693f8ad485773.d: crates/bench/src/bin/io.rs

/root/repo/target/release/deps/io-b5c693f8ad485773: crates/bench/src/bin/io.rs

crates/bench/src/bin/io.rs:
