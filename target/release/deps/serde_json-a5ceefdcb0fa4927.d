/root/repo/target/release/deps/serde_json-a5ceefdcb0fa4927.d: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-a5ceefdcb0fa4927.rlib: /tmp/stubs/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-a5ceefdcb0fa4927.rmeta: /tmp/stubs/serde_json/src/lib.rs

/tmp/stubs/serde_json/src/lib.rs:
