/root/repo/target/release/deps/dayu_workflow-000bf9f1cf2c6050.d: crates/workflow/src/lib.rs crates/workflow/src/bundle.rs crates/workflow/src/contract.rs crates/workflow/src/replay.rs crates/workflow/src/rerun.rs crates/workflow/src/retry.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs crates/workflow/src/transform.rs

/root/repo/target/release/deps/libdayu_workflow-000bf9f1cf2c6050.rlib: crates/workflow/src/lib.rs crates/workflow/src/bundle.rs crates/workflow/src/contract.rs crates/workflow/src/replay.rs crates/workflow/src/rerun.rs crates/workflow/src/retry.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs crates/workflow/src/transform.rs

/root/repo/target/release/deps/libdayu_workflow-000bf9f1cf2c6050.rmeta: crates/workflow/src/lib.rs crates/workflow/src/bundle.rs crates/workflow/src/contract.rs crates/workflow/src/replay.rs crates/workflow/src/rerun.rs crates/workflow/src/retry.rs crates/workflow/src/runner.rs crates/workflow/src/spec.rs crates/workflow/src/transform.rs

crates/workflow/src/lib.rs:
crates/workflow/src/bundle.rs:
crates/workflow/src/contract.rs:
crates/workflow/src/replay.rs:
crates/workflow/src/rerun.rs:
crates/workflow/src/retry.rs:
crates/workflow/src/runner.rs:
crates/workflow/src/spec.rs:
crates/workflow/src/transform.rs:
