/root/repo/target/release/deps/dayu_analyzer-51b8cfe5386ee530.d: crates/analyzer/src/lib.rs crates/analyzer/src/build.rs crates/analyzer/src/detect.rs crates/analyzer/src/diff.rs crates/analyzer/src/export.rs crates/analyzer/src/graph.rs crates/analyzer/src/resolution.rs

/root/repo/target/release/deps/libdayu_analyzer-51b8cfe5386ee530.rlib: crates/analyzer/src/lib.rs crates/analyzer/src/build.rs crates/analyzer/src/detect.rs crates/analyzer/src/diff.rs crates/analyzer/src/export.rs crates/analyzer/src/graph.rs crates/analyzer/src/resolution.rs

/root/repo/target/release/deps/libdayu_analyzer-51b8cfe5386ee530.rmeta: crates/analyzer/src/lib.rs crates/analyzer/src/build.rs crates/analyzer/src/detect.rs crates/analyzer/src/diff.rs crates/analyzer/src/export.rs crates/analyzer/src/graph.rs crates/analyzer/src/resolution.rs

crates/analyzer/src/lib.rs:
crates/analyzer/src/build.rs:
crates/analyzer/src/detect.rs:
crates/analyzer/src/diff.rs:
crates/analyzer/src/export.rs:
crates/analyzer/src/graph.rs:
crates/analyzer/src/resolution.rs:
