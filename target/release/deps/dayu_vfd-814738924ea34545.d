/root/repo/target/release/deps/dayu_vfd-814738924ea34545.d: crates/vfd/src/lib.rs crates/vfd/src/batch.rs crates/vfd/src/counting.rs crates/vfd/src/crash.rs crates/vfd/src/faulty.rs crates/vfd/src/file.rs crates/vfd/src/mem.rs crates/vfd/src/replay.rs

/root/repo/target/release/deps/libdayu_vfd-814738924ea34545.rlib: crates/vfd/src/lib.rs crates/vfd/src/batch.rs crates/vfd/src/counting.rs crates/vfd/src/crash.rs crates/vfd/src/faulty.rs crates/vfd/src/file.rs crates/vfd/src/mem.rs crates/vfd/src/replay.rs

/root/repo/target/release/deps/libdayu_vfd-814738924ea34545.rmeta: crates/vfd/src/lib.rs crates/vfd/src/batch.rs crates/vfd/src/counting.rs crates/vfd/src/crash.rs crates/vfd/src/faulty.rs crates/vfd/src/file.rs crates/vfd/src/mem.rs crates/vfd/src/replay.rs

crates/vfd/src/lib.rs:
crates/vfd/src/batch.rs:
crates/vfd/src/counting.rs:
crates/vfd/src/crash.rs:
crates/vfd/src/faulty.rs:
crates/vfd/src/file.rs:
crates/vfd/src/mem.rs:
crates/vfd/src/replay.rs:
