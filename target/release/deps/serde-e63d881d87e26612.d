/root/repo/target/release/deps/serde-e63d881d87e26612.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-e63d881d87e26612.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-e63d881d87e26612.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
