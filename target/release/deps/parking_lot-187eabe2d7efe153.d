/root/repo/target/release/deps/parking_lot-187eabe2d7efe153.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-187eabe2d7efe153.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-187eabe2d7efe153.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
