/root/repo/target/release/deps/dayu_trace-0c91fbe9a2ea7163.d: crates/trace/src/lib.rs crates/trace/src/binary.rs crates/trace/src/context.rs crates/trace/src/ids.rs crates/trace/src/intern.rs crates/trace/src/sha256.rs crates/trace/src/store.rs crates/trace/src/time.rs crates/trace/src/vfd.rs crates/trace/src/vol.rs crates/trace/src/wire.rs

/root/repo/target/release/deps/libdayu_trace-0c91fbe9a2ea7163.rlib: crates/trace/src/lib.rs crates/trace/src/binary.rs crates/trace/src/context.rs crates/trace/src/ids.rs crates/trace/src/intern.rs crates/trace/src/sha256.rs crates/trace/src/store.rs crates/trace/src/time.rs crates/trace/src/vfd.rs crates/trace/src/vol.rs crates/trace/src/wire.rs

/root/repo/target/release/deps/libdayu_trace-0c91fbe9a2ea7163.rmeta: crates/trace/src/lib.rs crates/trace/src/binary.rs crates/trace/src/context.rs crates/trace/src/ids.rs crates/trace/src/intern.rs crates/trace/src/sha256.rs crates/trace/src/store.rs crates/trace/src/time.rs crates/trace/src/vfd.rs crates/trace/src/vol.rs crates/trace/src/wire.rs

crates/trace/src/lib.rs:
crates/trace/src/binary.rs:
crates/trace/src/context.rs:
crates/trace/src/ids.rs:
crates/trace/src/intern.rs:
crates/trace/src/sha256.rs:
crates/trace/src/store.rs:
crates/trace/src/time.rs:
crates/trace/src/vfd.rs:
crates/trace/src/vol.rs:
crates/trace/src/wire.rs:
