//! Automated optimization: the paper's future-work item, closed-loop.
//!
//! ```text
//! cargo run --release --example auto_optimize
//! ```
//!
//! Records the DDMD workflow, lets `dayu_core::auto::optimize` derive and
//! apply a plan from the analysis with no human input, and prints what was
//! applied, what remained advisory, and the predicted speedup.

use dayu::prelude::*;
use dayu_core::auto;
use dayu_core::workloads::ddmd::{self, DdmdConfig};

fn main() {
    let cfg = DdmdConfig {
        sim_tasks: 6,
        iterations: 2,
        contact_map_dim: 96,
        point_cloud_points: 256,
        scalar_series_len: 64,
        compute_ns: 20_000_000,
        ..Default::default()
    };
    println!(
        "recording DDMD ({} sims × {} iterations)…",
        cfg.sim_tasks, cfg.iterations
    );
    let fs = MemFs::new();
    let run = record(&ddmd::workflow(&cfg), &fs).expect("record");

    let cluster = Cluster::gpu_cluster(4);
    let outcome = auto::optimize(&run, &cluster).expect("auto optimize");

    println!("\napplied automatically ({}):", outcome.applied.len());
    for a in &outcome.applied {
        println!("  • {a}");
    }
    println!(
        "\nadvisories needing an application re-run ({}):",
        outcome.advisories.len()
    );
    for a in outcome.advisories.iter().take(6) {
        println!("  • {a}");
    }
    if outcome.advisories.len() > 6 {
        println!("  … and {} more", outcome.advisories.len() - 6);
    }

    println!(
        "\nbaseline makespan:  {:>9.2} ms",
        outcome.baseline.makespan_ns as f64 / 1e6
    );
    println!(
        "optimized makespan: {:>9.2} ms",
        outcome.optimized.makespan_ns as f64 / 1e6
    );
    println!("predicted speedup:  {:>9.2}x", outcome.speedup());
}
