//! Quickstart: profile a tiny producer/consumer workflow end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Demonstrates the full DaYu pipeline on a two-task workflow: the format
//! library runs under the Data Semantic Mapper, the Workflow Analyzer
//! builds the FTG and SDG (the Fig. 3-style single-producer graph), the
//! detectors fire, and the advisor prints its recommendations. Artifacts
//! (interactive HTML graphs, DOT, JSON, the raw JSONL trace) land in
//! `dayu_quickstart_out/`.

use dayu::prelude::*;
use dayu_core::diagnose_with;

fn main() {
    let fs = MemFs::new();

    let spec = WorkflowSpec::new("quickstart")
        .stage(
            "produce",
            vec![TaskSpec::new("producer", |io: &TaskIo| {
                let file = io.create("results.h5")?;
                let group = file.root().create_group("experiment")?;

                // A contiguous fixed-length dataset…
                let mut temps = group.create_dataset(
                    "temperature",
                    DatasetBuilder::new(DataType::Float { width: 8 }, &[64, 64]),
                )?;
                temps.write_f64s(&vec![293.15; 64 * 64])?;
                temps.set_attr("units", AttrValue::Str("K".into()))?;
                temps.close()?;

                // …a chunked one…
                let mut grid = group.create_dataset(
                    "velocity",
                    DatasetBuilder::new(DataType::Float { width: 8 }, &[128, 128])
                        .chunks(&[32, 128]),
                )?;
                grid.write_f64s(&vec![0.5; 128 * 128])?;
                grid.close()?;

                // …and a variable-length one (the fragmentation-prone case).
                let mut notes =
                    group.create_dataset("notes", DatasetBuilder::new(DataType::VarLen, &[4]))?;
                notes.write_varlen(
                    0,
                    &[b"warm start", b"equilibrated", b"vortex shed", b"done"],
                )?;
                notes.close()?;
                file.close()
            })
            .with_compute(1_000_000)],
        )
        .stage(
            "analyze",
            vec![TaskSpec::new("analyzer", |io: &TaskIo| {
                let file = io.open("results.h5")?;
                let group = file.root().open_group("experiment")?;
                let mut temps = group.open_dataset("temperature")?;
                let mean: f64 = temps.read_f64s()?.iter().sum::<f64>() / (64.0 * 64.0);
                println!("  [analyzer] mean temperature: {mean:.2} K");
                temps.close()?;
                // Partial access: only one row of the velocity grid.
                let mut grid = group.open_dataset("velocity")?;
                grid.read_slab(&Selection::slab(&[0, 0], &[1, 128]))?;
                grid.close()?;
                file.close()
            })
            .with_compute(500_000)],
        );

    println!("recording + analyzing the workflow…");
    let diagnosis = diagnose_with(
        &spec,
        &fs,
        &SdgOptions {
            include_regions: true,
            region_count: 4,
        },
    )
    .expect("diagnosis");

    println!("\n{}", diagnosis.summary());

    let out = std::path::Path::new("dayu_quickstart_out");
    diagnosis.write_artifacts(out).expect("artifacts");
    println!(
        "artifacts written to {}/ (open sdg.html in a browser)",
        out.display()
    );
}
