//! Storm tracking: the PyFLEXTRKR case study (paper Section VI-A + VII-C).
//!
//! ```text
//! cargo run --release --example storm_tracking
//! ```
//!
//! Runs the nine-stage feature-tracking pipeline under DaYu, prints the
//! Fig. 4 observations the FTG exposes, then evaluates the Fig. 11
//! placement optimization: staging the stage-3–5 inputs onto one node's
//! SSD and co-scheduling the chain, versus everything on the parallel
//! filesystem.

use dayu::prelude::*;
use dayu_bench::fig11;
use dayu_bench::Scale;
use dayu_core::workloads::pyflextrkr::{self, PyflextrkrConfig};

fn main() {
    let cfg = PyflextrkrConfig {
        input_files: 8,
        input_bytes: 256 << 10,
        feature_bytes: 128 << 10,
        small_datasets: 32,
        small_dataset_bytes: 400,
        small_dataset_accesses: 5,
        compute_ns: 2_000_000,
    };

    // 1. Record the workflow with DaYu attached (inputs pre-exist,
    //    untraced, like real sensor data).
    let fs = MemFs::new();
    pyflextrkr::prepare_inputs_untraced(&fs, &cfg).expect("inputs");
    let run = record(&pyflextrkr::workflow(&cfg), &fs).expect("record");
    println!(
        "recorded {} tasks, {} object records, {} low-level ops",
        run.bundle.meta.task_order.len(),
        run.bundle.vol.len(),
        run.bundle.vfd.len()
    );

    // 2. Analyze: the four Fig. 4 observations.
    let analysis = Analysis::run(&run.bundle);
    println!("\nFTG observations (Fig. 4):");
    let count = |cat: &str| analysis.findings_of(cat).count();
    println!(
        "  data reuse:            {} files read by ≥2 tasks",
        count("data-reuse")
    );
    println!(
        "  write-after-read:      {} (run_gettracks on its output)",
        count("write-after-read") + count("read-after-write")
    );
    println!(
        "  time-dependent inputs: {} (PF files, needed at stage 6)",
        count("time-dependent-input")
    );
    println!(
        "  disposable data:       {} single-consumer files",
        count("disposable-data")
    );
    println!(
        "  small-dataset scatter: {} files (stage-9 statistics, Fig. 5)",
        count("small-scattered-datasets")
    );

    // 3. Advise.
    let recs = advise(&analysis.findings);
    println!("\ntop recommendations:");
    for r in recs.iter().take(5) {
        println!("  [{:?}] {}", r.guideline, r.rationale);
    }

    // 4. Evaluate the Fig. 11 placement optimization.
    println!("\nevaluating stages 3–5 placement (Fig. 11, quick scale)…");
    let fig = fig11::run(Scale::Quick);
    println!("{}", fig.render());
}
