//! ARLDM: the variable-length data-layout case study (Section VI-C).
//!
//! ```text
//! cargo run --release --example arldm_layout
//! ```
//!
//! Writes the image-synthesis preparation file with the default
//! contiguous layout and with DaYu's recommended chunked layout, compares
//! the low-level write-op counts (the paper's "half the number of POSIX
//! write operations") and the address-region scatter of Fig. 8, and
//! replays both op streams on a simulated BeeGFS to estimate the Fig. 13c
//! write-time improvement.

use dayu::prelude::*;
use dayu_bench::fig13;
use dayu_core::workloads::arldm::{self, ArldmConfig};

fn run_variant(layout: LayoutKind, chunk_elems: u64) -> (TraceBundle, u64) {
    let cfg = ArldmConfig {
        stories: 48,
        mean_image_bytes: 4 << 10,
        mean_text_bytes: 256,
        layout,
        chunk_elems,
        batch: 1,
        compute_ns: 0,
    };
    let fs = MemFs::new();
    let run = record(&arldm::workflow(&cfg), &fs).expect("record");
    let writes = run
        .bundle
        .vfd
        .iter()
        .filter(|r| {
            r.kind == dayu_core::trace::vfd::IoKind::Write && r.task.as_str() == "arldm_saveh5"
        })
        .count() as u64;
    (run.bundle, writes)
}

fn main() {
    println!("writing flintstones_out.h5 with both descriptor layouts…\n");
    let (contig_bundle, contig_writes) = run_variant(LayoutKind::Contiguous, 1);
    let (chunk_bundle, chunk_writes) = run_variant(LayoutKind::Chunked, 8);

    println!("write ops during arldm_saveh5:");
    println!("  contiguous (default): {contig_writes}");
    println!("  chunked (DaYu):       {chunk_writes}");
    println!(
        "  → {:.2}x fewer ops with chunking (paper: ~2x)\n",
        contig_writes as f64 / chunk_writes.max(1) as f64
    );

    // Fig. 8: the address-region view of both layouts.
    for (name, bundle) in [("contiguous", &contig_bundle), ("chunked", &chunk_bundle)] {
        let sdg = build_sdg(
            bundle,
            &SdgOptions {
                include_regions: true,
                region_count: 4,
            },
        );
        let regions: Vec<&str> = sdg
            .nodes_of(NodeKind::AddrRegion)
            .map(|n| n.label.as_str())
            .collect();
        println!(
            "{name}: {} datasets spread over regions {regions:?}",
            sdg.nodes_of(NodeKind::Dataset).count()
        );
    }

    // The advisor's verdict on the contiguous variant.
    let analysis = Analysis::run(&contig_bundle);
    for rec in advise(&analysis.findings) {
        if let Action::ChangeLayout { dataset, to } = &rec.action {
            println!("\nadvisor: change {dataset} to {to}");
            println!("  {}", rec.rationale);
            break;
        }
    }

    println!("\nestimated write time on BeeGFS (Fig. 13c, quick scale):");
    println!("{}", fig13::run_13c(dayu_bench::Scale::Quick).render());
}
