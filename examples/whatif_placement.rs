//! What-if placement exploration: DaYu's trace-replay methodology as an
//! interactive tool.
//!
//! ```text
//! cargo run --release --example whatif_placement
//! ```
//!
//! Records one producer/consumers workflow, then replays the *same* traced
//! op streams under a grid of candidate plans — shared filesystem vs
//! node-local placement, co-scheduled vs spread, with and without a
//! stage-in copy — and ranks them by simulated makespan. This is the
//! "reasoning about remediation" loop the paper's abstract promises,
//! without re-running the application once.

use dayu::prelude::*;
use dayu_core::workflow::{file_written_bytes, transform};

fn main() {
    // A fan-out workflow: one producer, four consumers of the same file.
    let mb = 1 << 20;
    let spec = WorkflowSpec::new("whatif")
        .stage(
            "produce",
            vec![TaskSpec::new("producer", move |io: &TaskIo| {
                let f = io.create("bulk.h5")?;
                let mut ds = f.root().create_dataset(
                    "payload",
                    DatasetBuilder::new(DataType::Int { width: 1 }, &[8 * mb as u64]),
                )?;
                ds.write(&vec![42u8; 8 * mb])?;
                ds.close()?;
                f.close()
            })],
        )
        .stage("consume", {
            (0..4)
                .map(|i| {
                    TaskSpec::new(format!("consumer_{i}"), |io: &TaskIo| {
                        let f = io.open("bulk.h5")?;
                        let mut ds = f.root().open_dataset("payload")?;
                        ds.read()?;
                        ds.close()?;
                        f.close()
                    })
                })
                .collect()
        });

    let fs = MemFs::new();
    let run = record(&spec, &fs).expect("record");
    let cluster = Cluster::gpu_cluster(4);
    let bulk_bytes = file_written_bytes(&run, "bulk.h5");
    println!(
        "traced {} ops moving {} MB; exploring plans…\n",
        run.bundle.vfd.len(),
        bulk_bytes >> 20
    );

    let mut results: Vec<(String, u64)> = Vec::new();

    // Plan A: baseline — spread consumers, file on BeeGFS.
    let schedule = Schedule::round_robin(&run, 4);
    let tasks = to_sim_tasks(&run, &schedule);
    let r = Engine::new(&cluster, &Placement::new())
        .run(&tasks)
        .unwrap();
    results.push(("A: spread + BeeGFS (baseline)".into(), r.makespan_ns));

    // Plan B: co-schedule everything on node 0, file still on BeeGFS.
    let mut b_tasks = tasks.clone();
    for t in &mut b_tasks {
        t.node = 0;
    }
    let r = Engine::new(&cluster, &Placement::new())
        .run(&b_tasks)
        .unwrap();
    results.push(("B: co-scheduled + BeeGFS".into(), r.makespan_ns));

    // Plan C: co-schedule + producer output on node-local NVMe.
    let mut placement = Placement::new();
    transform::place_outputs_local(&b_tasks, &mut placement, "producer", TierKind::NvmeSsd);
    let r = Engine::new(&cluster, &placement).run(&b_tasks).unwrap();
    results.push(("C: co-scheduled + node-local NVMe".into(), r.makespan_ns));

    // Plan D: spread consumers but stage the file onto each node first.
    let mut d_tasks = tasks.clone();
    let mut d_placement = Placement::new();
    for node in 0..4 {
        let staged = transform::stage_in(
            &mut d_tasks,
            &mut d_placement,
            "bulk.h5",
            bulk_bytes,
            node,
            TierKind::NvmeSsd,
        );
        // Redirect only the consumer on that node to its local replica.
        let copy_idx = d_tasks.len() - 1;
        for t in &mut d_tasks {
            if t.name == format!("consumer_{node}") {
                for op in &mut t.program {
                    if let SimOp::Io { file, .. } = op {
                        if file == "bulk.h5" || file.starts_with("bulk.h5@node") {
                            *file = staged.clone();
                        }
                    }
                }
                if !t.deps.contains(&copy_idx) {
                    t.deps.push(copy_idx);
                }
            }
        }
    }
    let r = Engine::new(&cluster, &d_placement).run(&d_tasks).unwrap();
    results.push(("D: spread + per-node stage-in".into(), r.makespan_ns));

    results.sort_by_key(|&(_, ns)| ns);
    println!("{:<40} makespan", "plan");
    println!("{}", "-".repeat(56));
    let worst = results.iter().map(|&(_, ns)| ns).max().unwrap();
    for (name, ns) in &results {
        println!(
            "{name:<40} {:>8.2} ms  ({:.2}x vs worst)",
            *ns as f64 / 1e6,
            worst as f64 / *ns as f64
        );
    }
    println!("\nbest plan: {}", results[0].0);
}
