//! DeepDriveMD: the simulation + ML pipeline case study (Section VI-B).
//!
//! ```text
//! cargo run --release --example ddmd_pipeline
//! ```
//!
//! Runs the 4-stage DDMD iteration under DaYu, prints the Fig. 6/7
//! observations — most notably that the training task touches the
//! aggregated `contact_map` dataset's *metadata only* — and then scores
//! the paper's four optimizations against the baseline with the replay
//! simulator (Fig. 12).

use dayu::prelude::*;
use dayu_bench::{fig12, Scale};
use dayu_core::workloads::ddmd::{self, DdmdConfig};

fn main() {
    let cfg = DdmdConfig {
        sim_tasks: 6,
        iterations: 1,
        contact_map_dim: 64,
        point_cloud_points: 256,
        scalar_series_len: 64,
        compute_ns: 1_000_000,
        ..Default::default()
    };

    let fs = MemFs::new();
    let run = record(&ddmd::workflow(&cfg), &fs).expect("record");
    let analysis = Analysis::run(&run.bundle);

    println!("DDMD observations (Figs. 6–7):");
    for f in &analysis.findings {
        match f {
            Finding::UnusedDataset {
                dataset,
                metadata_only_readers,
                ..
            } if dataset.contains("contact_map") => {
                println!(
                    "  ✔ {dataset} written by aggregate but only its METADATA touched by {:?}",
                    metadata_only_readers
                );
            }
            Finding::ReadAfterWrite { task, file } if file.contains("embeddings") => {
                println!("  ✔ {task} re-reads its own {file} (read-after-write reuse)");
            }
            Finding::IndependentTasks { first, second } => {
                println!("  ✔ {first} and {second} share no files → pipelinable");
            }
            Finding::ChunkedSmallDataset { dataset, bytes } => {
                println!("  ✔ {dataset} is chunked at only {bytes} bytes → layout overhead");
            }
            _ => {}
        }
    }

    // The Fig.-7 pop-up, straight from the SDG.
    let sdg = &analysis.sdg;
    if let Some(d) = sdg.find(NodeKind::Dataset, "aggregated_0000.h5:/contact_map") {
        for (i, e) in sdg.edges.iter().enumerate() {
            if e.from == d.id && sdg.nodes[e.to].label.starts_with("training") {
                println!("\nFig. 7 pop-up (contact_map → training):");
                for line in dayu_core::analyzer::export::edge_popup(sdg, i).lines() {
                    println!("  {line}");
                }
            }
        }
    }

    println!("\nscoring baseline vs DaYu-optimized pipeline (Fig. 12, quick scale)…");
    let fig = fig12::run(Scale::Quick);
    println!("{}", fig.render());
}
